package costmodel

import (
	"testing"

	"falcon/internal/sim"
)

func TestFuncNames(t *testing.T) {
	if FnVXLANRcv.String() != "vxlan_rcv" {
		t.Fatalf("got %s", FnVXLANRcv)
	}
	if FnGROReceive.String() != "napi_gro_receive" {
		t.Fatalf("got %s", FnGROReceive)
	}
	if Func(-1).String() != "unknown" || NumFuncs.String() != "unknown" {
		t.Fatal("out-of-range names")
	}
	seen := map[string]bool{}
	for f := Func(0); f < NumFuncs; f++ {
		n := f.String()
		if n == "" || n == "unknown" {
			t.Fatalf("func %d has no name", f)
		}
		if seen[n] {
			t.Fatalf("duplicate func name %q", n)
		}
		seen[n] = true
	}
}

func TestCostScalesWithBytes(t *testing.T) {
	m := Kernel419()
	small := m.Cost(FnSKBAlloc, 64)
	large := m.Cost(FnSKBAlloc, 4096)
	if large <= small {
		t.Fatal("per-byte cost not applied")
	}
	if m.Cost(FnBridge, 0) != m.Base(FnBridge) {
		t.Fatal("base cost mismatch")
	}
}

func TestKernelProfilesDiffer(t *testing.T) {
	k4, k5 := Kernel419(), Kernel504()
	if k4.Name == k5.Name {
		t.Fatal("profiles share a name")
	}
	// 5.4 improved allocation...
	if k5.Cost(FnSKBAlloc, 1500) >= k4.Cost(FnSKBAlloc, 1500) {
		t.Fatal("5.4 allocation should be cheaper")
	}
	// ...but regressed GRO.
	if k5.Cost(FnGROReceive, 4096) <= k4.Cost(FnGROReceive, 4096) {
		t.Fatal("5.4 GRO should be costlier")
	}
}

func TestCloneIsolation(t *testing.T) {
	a := Kernel419()
	b := a.Clone()
	b.Set(FnBridge, Entry{Base: 9999})
	if a.Base(FnBridge) == 9999 {
		t.Fatal("clone shares entries with original")
	}
	if b.Get(FnBridge).Base != 9999 {
		t.Fatal("set/get mismatch")
	}
}

func TestByName(t *testing.T) {
	if ByName("5.4").Name != "linux-5.4" {
		t.Fatal("5.4 lookup failed")
	}
	if ByName("linux-5.4").Name != "linux-5.4" {
		t.Fatal("linux-5.4 lookup failed")
	}
	if ByName("anything-else").Name != "linux-4.19" {
		t.Fatal("default lookup failed")
	}
}

func TestStage1SaturationShape(t *testing.T) {
	// Paper Fig. 9a: under TCP 4 KB, skb_allocation and napi_gro_receive
	// are comparable and together dominate the first stage.
	m := Kernel419()
	alloc := float64(m.Cost(FnSKBAlloc, 4096))
	gro := float64(m.Cost(FnGROReceive, 4096))
	ratio := alloc / gro
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("alloc/gro ratio = %.2f, want comparable (Fig. 9a)", ratio)
	}
	rest := float64(m.Base(FnNAPIPoll) + m.Base(FnNetifReceive) + m.Base(FnRPS))
	if alloc+gro < rest {
		t.Fatal("alloc+GRO should dominate stage 1 at 4 KB")
	}
}

func TestOverlayCostExceedsHost(t *testing.T) {
	// The overlay softirq path must be substantially more expensive than
	// the host path for the same packet (the paper's root cause).
	m := Kernel419()
	host := m.Cost(FnNAPIPoll, 0) + m.Cost(FnSKBAlloc, 64) + m.Cost(FnGROReceive, 0) +
		m.Cost(FnNetifReceive, 0) + m.Cost(FnIPRcv, 0) + m.Cost(FnUDPRcv, 0) + m.Cost(FnSocketDeliver, 0)
	overlayExtra := m.Cost(FnVXLANRcv, 64) + m.Cost(FnGROCellPoll, 0) + m.Cost(FnNetifReceive, 0) +
		m.Cost(FnBridge, 0) + m.Cost(FnVethXmit, 0) + m.Cost(FnBacklog, 0) +
		m.Cost(FnIPRcv, 0) + m.Cost(FnUDPRcv, 0)
	if float64(overlayExtra) < 0.8*float64(host) {
		t.Fatalf("overlay extra (%v) should approach host path cost (%v)", overlayExtra, host)
	}
}

func TestMigrationPenaltyPositive(t *testing.T) {
	for _, m := range []*Model{Kernel419(), Kernel504()} {
		if m.Migration() <= 0 {
			t.Fatalf("%s: migration penalty must be positive", m.Name)
		}
		if m.Migration() > sim.Microsecond {
			t.Fatalf("%s: migration penalty implausibly large", m.Name)
		}
	}
}
