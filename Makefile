GO ?= go

.PHONY: all build vet test race audit reconfig tail cache fuzz scale bench-smoke bench-report bench-baseline experiments profile clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full self-audit: fig10 and abl-chaos with runtime verification on
# (SKB ledger, conservation invariants, watchdog), fenced by wall-clock
# and event budgets. Any invariant breach aborts nonzero and leaves a
# falcon-audit-*.dump for -replay.
audit:
	$(GO) run -race ./cmd/falconsim -exp fig10,abl-chaos -audit \
		-deadline 20m -max-events 2000000000

# Hot reconfiguration under load: generation swaps (kernel roll,
# graceful drain + re-add, steering flips) with convergence SLOs and
# full runtime verification, serial and sharded — the experiment's
# verdict column FAILs on any unaccounted packet, steady-state ratio
# < 0.98x, blackout > 2ms, or an incomplete drain quiesce.
reconfig:
	$(GO) run ./cmd/falconsim -exp abl-reconfig -audit -deadline 20m \
		-max-events 2000000000
	$(GO) run ./cmd/falconsim -exp abl-reconfig -audit -shards 4 \
		-deadline 20m -max-events 2000000000

# Tail latency under open-loop overload: heavy-tailed (Pareto/MMPP)
# flow populations swept from 0.5x to 1.2x of the vanilla overlay's
# capacity, vanilla vs Falcon, with p50/p99/p99.9 curves and SLO
# verdicts (p99 budget when underloaded, goodput knee past 0.9x).
# Serial and sharded runs print byte-identical tables.
tail:
	$(GO) run ./cmd/falconsim -exp abl-tail -deadline 20m \
		-max-events 2000000000
	$(GO) run ./cmd/falconsim -exp abl-tail -shards 4 -deadline 20m \
		-max-events 2000000000

# Full-path flow caching ablation: the ONCache-style RX decap fast path
# vs Falcon vs both, on the fig10-style 16B UDP stress and the 8-host
# mesh ring, with hit/miss/stale counters. Serial and sharded runs
# print byte-identical tables.
cache:
	$(GO) run ./cmd/falconsim -exp abl-cache -deadline 20m \
		-max-events 2000000000
	$(GO) run ./cmd/falconsim -exp abl-cache -shards 4 -deadline 20m \
		-max-events 2000000000

# Scenario fuzzing: 50 random-but-valid scenarios through the
# metamorphic oracle battery (determinism, conservation, equivalence,
# monotonicity, fault sanity, reconfig conservation). Violations are
# shrunk and written as falcon-fuzz-*.json reproducers (replay:
# falconsim -scenario <file>).
fuzz:
	$(GO) run ./cmd/falconsim -fuzz -seeds 50 -fuzz-workers 4 -deadline 10m

# PDES scaling sweep: the mesh8 benchmark at -shards {1,2,4,auto} with
# window synchronization metrics (windows/sec, width, cross-shard
# traffic, worker idle fraction) per configuration.
scale:
	$(GO) run ./cmd/falconsim -scale

# One full pass of every experiment benchmark (quick windows).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Hot-path benchmark report (BENCH_sim.json), guarded against the
# committed baseline: fails on a >10% allocs/packet regression.
bench-report:
	$(GO) run ./cmd/falconsim -bench-report BENCH_sim.json -bench-baseline BENCH_baseline.json

# Regenerate the committed regression baseline (run on a quiet machine).
bench-baseline:
	$(GO) run ./cmd/falconsim -bench-report BENCH_baseline.json

# Regenerate every paper table with full measurement windows.
experiments:
	$(GO) run ./cmd/falconsim -all

# CPU + heap profiles of the hot path (full fig10 windows). Inspect with
#   go tool pprof falcon-cpu.out
#   go tool pprof -sample_index=alloc_objects falcon-mem.out
PROFILE_EXP ?= fig10
profile:
	$(GO) run ./cmd/falconsim -exp $(PROFILE_EXP) \
		-cpuprofile falcon-cpu.out -memprofile falcon-mem.out

clean:
	$(GO) clean ./...
