GO ?= go

.PHONY: all build vet test race bench-smoke bench-report bench-baseline experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One full pass of every experiment benchmark (quick windows).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Hot-path benchmark report (BENCH_sim.json), guarded against the
# committed baseline: fails on a >10% allocs/packet regression.
bench-report:
	$(GO) run ./cmd/falconsim -bench-report BENCH_sim.json -bench-baseline BENCH_baseline.json

# Regenerate the committed regression baseline (run on a quiet machine).
bench-baseline:
	$(GO) run ./cmd/falconsim -bench-report BENCH_baseline.json

# Regenerate every paper table with full measurement windows.
experiments:
	$(GO) run ./cmd/falconsim -all

clean:
	$(GO) clean ./...
