GO ?= go

.PHONY: all build vet test race bench-smoke experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One full pass of every experiment benchmark (quick windows).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regenerate every paper table with full measurement windows.
experiments:
	$(GO) run ./cmd/falconsim -all

clean:
	$(GO) clean ./...
