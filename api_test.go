package falcon_test

import (
	"fmt"
	"testing"

	falcon "falcon"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 8, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	f := tb.EnableFalconOnServer(falcon.DefaultConfig([]int{3, 4, 5}))
	if f == nil || !tb.Server.Falcon.Config().TwoChoice {
		t.Fatal("falcon not attached through the facade")
	}
	sock, flows := tb.StressFlood(true, 2, 64, 2, 20*falcon.Millisecond)
	if len(flows) != 2 {
		t.Fatal("flood not started")
	}
	res := falcon.MeasureWindow(tb, []*falcon.Socket{sock}, 5*falcon.Millisecond, 10*falcon.Millisecond)
	if res.Delivered == 0 || res.PPS == 0 {
		t.Fatal("no traffic measured through the facade")
	}
}

func TestFacadeTCP(t *testing.T) {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 8, Containers: 1,
		GRO: true, InnerGRO: true,
	})
	c, err := falcon.DialTCP(falcon.TCPConfig{
		Net:        tb.Net,
		SenderHost: tb.Client, SenderCtr: tb.ClientCtrs[0], SenderCore: 2, SrcPort: 40000,
		ReceiverHost: tb.Server, ReceiverCtr: tb.ServerCtrs[0], AppCore: 3, DstPort: 5201,
		MsgSize: 1024, FlowID: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Send(20)
	tb.Run(20 * falcon.Millisecond)
	if c.Socket().Delivered.Value() != 20 {
		t.Fatalf("delivered %d of 20", c.Socket().Delivered.Value())
	}
	c.Close()
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(falcon.Experiments()) < 20 {
		t.Fatalf("registry too small: %d", len(falcon.Experiments()))
	}
	e, ok := falcon.ExperimentByID("fig11")
	if !ok {
		t.Fatal("fig11 missing")
	}
	tables := e.Run(falcon.ExperimentOptions{Quick: true})
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("experiment produced nothing")
	}
}

func TestFacadeChaosHarness(t *testing.T) {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 8, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	in := falcon.NewFaultInjector(tb.E)
	in.Install(falcon.FaultPlan{Name: "smoke"}) // empty plan: zero-cost
	if in.Counters.Injected.Value() != 0 {
		t.Fatal("empty plan injected something")
	}
	in.Install(falcon.FaultPlan{Name: "burst", Items: []falcon.FaultItem{
		{At: 4 * falcon.Millisecond, For: falcon.Millisecond,
			Fault: &falcon.LinkLossBurst{Link: tb.Client.LinkTo(falcon.ServerIP), Rate: 1.0}},
	}})
	sock, _ := tb.StressFlood(true, 1, 64, 2, 10*falcon.Millisecond)
	res := falcon.MeasureWindow(tb, []*falcon.Socket{sock}, 2*falcon.Millisecond, 5*falcon.Millisecond)
	if res.Delivered == 0 {
		t.Fatal("no traffic with a chaos plan installed")
	}
	if got := in.Counters.Injected.Value(); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
	if got := in.Counters.Cleared.Value(); got != 1 {
		t.Fatalf("cleared = %d, want 1", got)
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	e := falcon.NewEngine(7)
	n := falcon.NewNetwork(e)
	if n.KV == nil || len(n.Hosts()) != 0 {
		t.Fatal("fresh network malformed")
	}
}

// ExampleNewTestbed demonstrates the three-way comparison at the heart
// of the paper.
func ExampleNewTestbed() {
	run := func(mode falcon.Mode) float64 {
		tb := falcon.NewTestbed(falcon.TestbedConfig{
			LinkRate: 100 * falcon.Gbps, Cores: 12, Containers: 1,
			RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
		})
		if mode == falcon.ModeFalcon {
			tb.EnableFalconOnServer(falcon.DefaultConfig([]int{3, 4, 5}))
		}
		sock, _ := tb.StressFlood(mode != falcon.ModeHost, 3, 16, 2, 50*falcon.Millisecond)
		res := falcon.MeasureWindow(tb, []*falcon.Socket{sock},
			10*falcon.Millisecond, 30*falcon.Millisecond)
		return res.PPS
	}
	host := run(falcon.ModeHost)
	con := run(falcon.ModeCon)
	fal := run(falcon.ModeFalcon)
	fmt.Printf("overlay keeps %.0f%% of host; falcon recovers to %.0f%%\n",
		con/host*100, fal/host*100)
	// Output: overlay keeps 53% of host; falcon recovers to 88%
}
