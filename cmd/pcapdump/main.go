// Command pcapdump runs a short overlay scenario and writes the virtual
// wire's traffic to a standard pcap file. Because the simulator builds
// byte-accurate frames, the capture dissects cleanly in tcpdump or
// Wireshark:
//
//	go run ./cmd/pcapdump -o overlay.pcap
//	tcpdump -r overlay.pcap -nn 'udp port 4789' | head
//
// shows real VXLAN-encapsulated UDP/TCP container traffic, exactly as a
// capture on the physical NIC of the paper's testbed would.
package main

import (
	"flag"
	"fmt"
	"os"

	"falcon/internal/pcap"
	"falcon/internal/sim"
	"falcon/internal/transport"
	"falcon/internal/workload"

	falcon "falcon"
)

func main() {
	var (
		out    = flag.String("o", "overlay.pcap", "output pcap path")
		proto_ = flag.String("proto", "both", "udp | tcp | both")
		count  = flag.Int("n", 200, "approximate UDP packets to capture")
	)
	flag.Parse()

	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 8, Containers: 1,
		GRO: true, InnerGRO: true,
	})

	fh, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapdump: %v\n", err)
		os.Exit(1)
	}
	defer fh.Close()
	pw, err := pcap.NewWriter(fh, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapdump: %v\n", err)
		os.Exit(1)
	}
	// Tap both directions of the inter-host wire.
	pcap.Tap(tb.Client.LinkTo(workload.ServerIP), pw)
	pcap.Tap(tb.Server.LinkTo(workload.ClientIP), pw)

	until := sim.Time(*count) * 50 * sim.Microsecond
	if *proto_ == "udp" || *proto_ == "both" {
		f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 256, 2, 3, 1)
		f.SendAtRate(20_000, until)
	}
	if *proto_ == "tcp" || *proto_ == "both" {
		c, err := transport.Dial(transport.Config{
			Net:        tb.Net,
			SenderHost: tb.Client, SenderCtr: tb.ClientCtrs[0], SenderCore: 4, SrcPort: 40000,
			ReceiverHost: tb.Server, ReceiverCtr: tb.ServerCtrs[0], AppCore: 5, DstPort: 5201,
			MsgSize: 1024, FlowID: 2,
		}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcapdump: %v\n", err)
			os.Exit(1)
		}
		c.Send(*count / 4)
	}
	tb.Run(until + 10*sim.Millisecond)

	fmt.Printf("wrote %d frames to %s\n", pw.Packets(), *out)
	fmt.Println("inspect with: tcpdump -r " + *out + " -nn 'udp port 4789'")
}
