package main

import (
	"bytes"
	"testing"

	"falcon/internal/experiments"
)

// TestRunnerOutputIdentical pins the runner's rendering contract: stdout
// is byte-identical across invocations and across engine choices —
// serial, a forced shard count, and -shards auto (which resolves
// per-bed via sim.AutoShards) must all render the same tables.
func TestRunnerOutputIdentical(t *testing.T) {
	var exps []experiments.Experiment
	for _, id := range []string{"fig4", "fig2d", "mesh8"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	base := experiments.Options{Quick: true, Seed: 1}
	var serial bytes.Buffer
	if failures := runExperiments(exps, base, &serial); failures != 0 {
		t.Fatalf("serial run reported %d failures", failures)
	}
	if serial.Len() == 0 {
		t.Fatal("no output")
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"shards-4", 4},
		{"shards-auto", experiments.ShardsAuto},
	} {
		opt := base
		opt.Shards = tc.shards
		var got bytes.Buffer
		if failures := runExperiments(exps, opt, &got); failures != 0 {
			t.Fatalf("%s run reported %d failures", tc.name, failures)
		}
		if !bytes.Equal(serial.Bytes(), got.Bytes()) {
			t.Fatalf("%s output differs from serial run:\n--- serial ---\n%s\n--- %s ---\n%s",
				tc.name, serial.String(), tc.name, got.String())
		}
	}
}

// TestParseShards covers the -shards flag grammar.
func TestParseShards(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1", 1, false},
		{"4", 4, false},
		{"auto", experiments.ShardsAuto, false},
		{"-2", 0, true},
		{"many", 0, true},
	} {
		got, err := parseShards(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("parseShards(%q): err = %v, want err %t", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("parseShards(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
