package main

import (
	"bytes"
	"testing"

	"falcon/internal/experiments"
)

// TestParallelOutputIdentical pins the parallel runner's contract:
// stdout is byte-identical between -parallel 1 and -parallel 8, in
// request order, because each experiment runs on its own engine and
// rendering is buffered per experiment.
func TestParallelOutputIdentical(t *testing.T) {
	var exps []experiments.Experiment
	for _, id := range []string{"fig4", "fig2d", "fig5"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	opt := experiments.Options{Quick: true, Seed: 1}
	var serial, parallel bytes.Buffer
	runExperiments(exps, opt, 1, &serial)
	runExperiments(exps, opt, 8, &parallel)
	if serial.Len() == 0 {
		t.Fatal("no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("-parallel 8 output differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
