package main

import (
	"fmt"
	"os"
	"strings"

	"falcon/internal/audit"
	falconcore "falcon/internal/core"
	"falcon/internal/scenario"
)

// runFuzz drives one fuzz campaign: -seeds scenarios from -fuzz-seed,
// each checked against the oracle battery, violations shrunk and
// written as reproducers under -repro-dir. Exit 0 when every seed is
// clean, 1 on findings, 2 on a configuration error.
func runFuzz(opt scenario.FuzzOptions) int {
	opt.Log = os.Stderr
	failures, err := scenario.Fuzz(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}
	if len(failures) == 0 {
		fmt.Printf("fuzz: %d seeds clean\n", opt.Seeds)
		return 0
	}
	fmt.Printf("fuzz: %d finding(s) in %d seeds\n", len(failures), opt.Seeds)
	for _, f := range failures {
		fmt.Printf("  seed %-4d [%s] %s\n", f.Seed, f.Violation.Oracle, firstLine(f.Violation.Detail))
		if f.ReproPath != "" {
			fmt.Printf("    reproducer: %s\n", f.ReproPath)
		}
	}
	return 1
}

// runScenario replays one scenario or reproducer file: the pinned
// oracle for a reproducer, the whole applicable battery for a bare
// scenario. Exit 1 when the violation reproduces (the expected outcome
// for a genuine reproducer), 0 when the run is clean now. shards > 1
// replays on a PDES cluster — verdicts are byte-identical to serial, so
// this is a determinism cross-check, not a different test.
func runScenario(path string, shards int) int {
	sc, names, err := scenario.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}
	sc.Shards = shards
	vs, err := scenario.Check(sc, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}
	if len(vs) == 0 {
		fmt.Fprintf(os.Stderr, "falconsim: scenario replay completed clean — failure did not reproduce\n")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "falconsim: REPRODUCED: %s\n", v)
	}
	return 1
}

// installDefect seeds a known datapath defect for fuzzer self-tests:
// proof that the oracle battery catches a real bug, and the knob a
// reproducer needs to replay such a finding.
func installDefect(name string) int {
	switch name {
	case "drop-falcon-cpu":
		// The classic off-by-one steering bug: the placement mask loses
		// its last CPU, so one parallel core silently never receives
		// softirqs (and a 1-CPU config divides by zero).
		falconcore.SeedPlacementDefect(func(cpus []int) []int {
			return cpus[:len(cpus)-1]
		})
	default:
		fmt.Fprintf(os.Stderr, "falconsim: unknown -fuzz-defect %q (have: drop-falcon-cpu)\n", name)
		return 2
	}
	return 0
}

// replayScenarioDump re-checks the scenario embedded in an audit dump
// header (exp=fuzz/<oracle>) against the recorded oracle.
func replayScenarioDump(info audit.RunInfo) int {
	sc, err := scenario.FromJSON([]byte(info.Scenario))
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: dump scenario: %v\n", err)
		return 2
	}
	var names []string
	if o := strings.TrimPrefix(info.Exp, "fuzz/"); o != info.Exp && o != "" {
		names = []string{o}
	}
	fmt.Fprintf(os.Stderr, "falconsim: replaying scenario %q (seed %d)\n", sc.Name, sc.Seed)
	vs, err := scenario.Check(sc, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}
	if len(vs) == 0 {
		fmt.Fprintf(os.Stderr, "falconsim: scenario replay completed clean — failure did not reproduce\n")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "falconsim: REPRODUCED: %s\n", v)
	}
	return 1
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
