package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"falcon/internal/experiments"
)

// chdirTemp moves the test into a temp dir (worker panics drop dump
// files into the cwd) and restores the original on cleanup.
func chdirTemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

// TestRunnerSurvivesPanic pins the hardened runner contract: a
// panicking experiment (here an audit selftest that aborts by design)
// must not take down the process or the remaining experiments — its
// failure is counted, its dump written, and every healthy experiment
// still renders.
func TestRunnerSurvivesPanic(t *testing.T) {
	chdirTemp(t)
	var exps []experiments.Experiment
	for _, id := range []string{"audit-leak", "fig4"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	var out bytes.Buffer
	failures := runExperiments(exps, experiments.Options{Quick: true, Seed: 1}, &out)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
	if !strings.Contains(out.String(), "### fig4") {
		t.Fatal("healthy experiment's output lost when a sibling panicked")
	}
	if strings.Contains(out.String(), "audit-leak —") {
		t.Fatal("failed experiment still rendered tables")
	}
	if _, err := os.Stat("falcon-audit-audit-leak.dump"); err != nil {
		t.Fatalf("audit abort did not write its replay dump: %v", err)
	}
}

// TestReplayReproducesDump closes the loop the dump header promises:
// -replay on a just-written dump re-runs the exact experiment and exits
// nonzero because the deterministic failure fires again.
func TestReplayReproducesDump(t *testing.T) {
	chdirTemp(t)
	e, _ := experiments.ByID("audit-double-free")
	var out bytes.Buffer
	if f := runExperiments([]experiments.Experiment{e}, experiments.Options{Quick: true, Seed: 1}, &out); f != 1 {
		t.Fatalf("selftest did not fail (failures=%d)", f)
	}
	if code := runReplay("falcon-audit-audit-double-free.dump", 0); code != 1 {
		t.Fatalf("replay exit %d, want 1 (reproduced)", code)
	}
}

// TestReplayRejectsGarbage keeps -replay's error paths crisp: a missing
// file and a non-dump file both exit 2 without running anything.
func TestReplayRejectsGarbage(t *testing.T) {
	dir := chdirTemp(t)
	if code := runReplay("does-not-exist.dump", 0); code != 2 {
		t.Fatalf("missing dump: exit %d, want 2", code)
	}
	bad := dir + "/not-a-dump"
	os.WriteFile(bad, []byte("hello\n"), 0o644)
	if code := runReplay(bad, 0); code != 2 {
		t.Fatalf("garbage dump: exit %d, want 2", code)
	}
}
