package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"falcon/internal/experiments"
)

// chdirTemp moves the test into a temp dir (worker panics drop dump
// files into the cwd) and restores the original on cleanup.
func chdirTemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

// TestRunnerSurvivesPanic pins the hardened runner contract: a
// panicking experiment (here an audit selftest that aborts by design)
// must not take down the process or the remaining experiments — its
// failure is counted, its dump written, and every healthy experiment
// still renders.
func TestRunnerSurvivesPanic(t *testing.T) {
	chdirTemp(t)
	var exps []experiments.Experiment
	for _, id := range []string{"audit-leak", "fig4"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	var out bytes.Buffer
	failures := runExperiments(exps, experiments.Options{Quick: true, Seed: 1}, &out)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
	if !strings.Contains(out.String(), "### fig4") {
		t.Fatal("healthy experiment's output lost when a sibling panicked")
	}
	if strings.Contains(out.String(), "audit-leak —") {
		t.Fatal("failed experiment still rendered tables")
	}
	if _, err := os.Stat("falcon-audit-audit-leak.dump"); err != nil {
		t.Fatalf("audit abort did not write its replay dump: %v", err)
	}
}

// TestScheduleFlagsRejectMalformedJSON pins the -reconfig/-crash flag
// contract: any malformed input — missing file, broken JSON, or a
// schedule that fails validation — produces one single-line error (the
// caller prints it and exits nonzero) and never panics; valid files
// load into the options.
func TestScheduleFlagsRejectMalformedJSON(t *testing.T) {
	dir := chdirTemp(t)
	write := func(name, body string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name                 string
		reconfig, crash      string
		wantErr              bool
		wantSched, wantCrash bool
	}{
		{name: "no-flags"},
		{name: "reconfig-missing-file", reconfig: dir + "/nope.json", wantErr: true},
		{name: "crash-missing-file", crash: dir + "/nope.json", wantErr: true},
		{name: "reconfig-broken-json", reconfig: write("r1.json", "{"), wantErr: true},
		{name: "crash-broken-json", crash: write("c1.json", `{"crashes":[`), wantErr: true},
		{name: "reconfig-unknown-kind",
			reconfig: write("r2.json", `{"actions":[{"kind":"warp","at_ms":0,"host":"h"}]}`), wantErr: true},
		{name: "reconfig-wrong-shape", reconfig: write("r3.json", `[1,2,3]`), wantErr: true},
		{name: "crash-empty-schedule", crash: write("c2.json", `{"crashes":[]}`), wantErr: true},
		{name: "crash-reboot-before-crash",
			crash: write("c3.json", `{"crashes":[{"host":"server","at_ms":5,"reboot_ms":2}]}`), wantErr: true},
		{name: "crash-double-crash",
			crash: write("c4.json", `{"crashes":[{"host":"server","at_ms":1},{"host":"server","at_ms":3}]}`), wantErr: true},
		{name: "crash-wrong-shape", crash: write("c5.json", `"boom"`), wantErr: true},
		{name: "both-valid",
			reconfig:  write("r-ok.json", `{"actions":[{"kind":"kernel-upgrade","at_ms":1,"host":"server","kernel":"linux-5.4"}]}`),
			crash:     write("c-ok.json", `{"crashes":[{"host":"server","at_ms":2,"reboot_ms":6}]}`),
			wantSched: true, wantCrash: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flag load panicked on user input: %v", r)
				}
			}()
			var opt experiments.Options
			err := loadScheduleFlags(&opt, tc.reconfig, tc.crash)
			if tc.wantErr {
				if err == nil {
					t.Fatal("malformed input accepted")
				}
				if strings.ContainsRune(strings.TrimSuffix(err.Error(), "\n"), '\n') {
					t.Fatalf("error is not one line: %q", err.Error())
				}
				return
			}
			if err != nil {
				t.Fatalf("valid input rejected: %v", err)
			}
			if (opt.Reconfig != nil) != tc.wantSched || (opt.Crash != nil) != tc.wantCrash {
				t.Fatalf("loaded reconfig=%v crash=%v, want %v/%v",
					opt.Reconfig != nil, opt.Crash != nil, tc.wantSched, tc.wantCrash)
			}
		})
	}
}

// TestReplayReproducesDump closes the loop the dump header promises:
// -replay on a just-written dump re-runs the exact experiment and exits
// nonzero because the deterministic failure fires again.
func TestReplayReproducesDump(t *testing.T) {
	chdirTemp(t)
	e, _ := experiments.ByID("audit-double-free")
	var out bytes.Buffer
	if f := runExperiments([]experiments.Experiment{e}, experiments.Options{Quick: true, Seed: 1}, &out); f != 1 {
		t.Fatalf("selftest did not fail (failures=%d)", f)
	}
	if code := runReplay("falcon-audit-audit-double-free.dump", 0); code != 1 {
		t.Fatalf("replay exit %d, want 1 (reproduced)", code)
	}
}

// TestReplayRejectsGarbage keeps -replay's error paths crisp: a missing
// file and a non-dump file both exit 2 without running anything.
func TestReplayRejectsGarbage(t *testing.T) {
	dir := chdirTemp(t)
	if code := runReplay("does-not-exist.dump", 0); code != 2 {
		t.Fatalf("missing dump: exit %d, want 2", code)
	}
	bad := dir + "/not-a-dump"
	os.WriteFile(bad, []byte("hello\n"), 0o644)
	if code := runReplay(bad, 0); code != 2 {
		t.Fatalf("garbage dump: exit %d, want 2", code)
	}
}
