// Command falconsim regenerates the paper's tables and figures.
//
// Usage:
//
//	falconsim -list                    # list available experiments
//	falconsim -exp fig10               # run one experiment
//	falconsim -exp fig10,fig13         # run several
//	falconsim -all                     # run everything
//	falconsim -all -quick              # shorter measurement windows
//	falconsim -exp mesh8 -shards 4     # PDES: shard one simulation across goroutines
//	falconsim -exp mesh8 -shards auto  # pick shards/workers from topology × NumCPU
//	falconsim -exp fig10 -kernel 5.4
//	falconsim -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//	falconsim -bench-report BENCH_sim.json
//	falconsim -scale                 # sweep -shards {1,2,4,auto} over the PDES bench
//	falconsim -fuzz -seeds 50        # scenario fuzzing under the oracle battery
//	falconsim -scenario repro.json   # replay a fuzz reproducer
//
// Tables always print to stdout in the order the experiments were
// requested; per-experiment timing goes to stderr so stdout is
// byte-deterministic for a given seed. -shards runs each simulation on
// a conservative PDES cluster (one logical process per simulated
// host); outputs are byte-identical to the serial engine for every
// shard count, including auto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"falcon/internal/audit"
	"falcon/internal/experiments"
	"falcon/internal/reconfig"
	"falcon/internal/scenario"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

func main() {
	// All work happens in run so deferred cleanup (profile writers)
	// executes before the process exits.
	os.Exit(run())
}

func run() int {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		expIDs    = flag.String("exp", "", "comma-separated experiment ids to run")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "short measurement windows")
		kernel    = flag.String("kernel", "", `kernel cost profile ("4.19" default, "5.4")`)
		seed      = flag.Uint64("seed", 1, "simulation seed")
		shardsF   = flag.String("shards", "", `PDES shards per simulation: a count (0/1 = serial engine), or "auto" to derive shards and workers from each bed's topology and runtime.NumCPU(); outputs are byte-identical for every value`)
		report    = flag.String("bench-report", "", "write a hot-path benchmark report to this JSON file and exit")
		baseline  = flag.String("bench-baseline", "", "with -bench-report: fail on regression against this baseline JSON (allocs/pkt, ns/pkt, sharded speedup)")
		auditOn   = flag.Bool("audit", false, "enable runtime verification (SKB ledger, conservation invariants, watchdog); breaches abort with a replayable dump")
		cacheOn   = flag.Bool("cache", false, "enable the ONCache-style RX decap fast path (per-core flow caches) on every experiment host")
		deadline  = flag.Duration("deadline", 0, "abort the whole run after this wall-clock duration (0 = no limit)")
		maxEvents = flag.Uint64("max-events", 0, "abort any single experiment after firing this many engine events (0 = no limit)")
		replay    = flag.String("replay", "", "re-run the exact experiment/seed/config named in an audit dump's header and exit")
		reconfigF = flag.String("reconfig", "", "JSON generation schedule for abl-reconfig (replaces its built-in rolling-upgrade/drain/flip plan)")
		crashF    = flag.String("crash", "", "JSON crash schedule for abl-crash (replaces its built-in server crash/reboot plan)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		scale = flag.Bool("scale", false, "sweep the PDES benchmark over -shards {1,2,4,auto} and print a scaling table")

		fuzz        = flag.Bool("fuzz", false, "generate random scenarios and check them against the metamorphic oracle battery")
		fuzzWorkers = flag.Int("fuzz-workers", 1, "with -fuzz: seeds run concurrently (each scenario owns its engine)")
		seeds       = flag.Int("seeds", 50, "with -fuzz: how many consecutive fuzz seeds to run")
		fuzzSeed    = flag.Uint64("fuzz-seed", 1, "with -fuzz: first fuzz seed")
		oracleSel   = flag.String("oracles", "", "with -fuzz/-scenario: comma-separated oracle subset (default all)")
		reproDir    = flag.String("repro-dir", ".", "with -fuzz: directory for shrunk reproducer files")
		noShrink    = flag.Bool("no-shrink", false, "with -fuzz: skip minimization of violating scenarios")
		scenarioF   = flag.String("scenario", "", "replay a scenario or fuzz-reproducer JSON file and exit")
		fuzzDefect  = flag.String("fuzz-defect", "", "seed a known datapath defect (fuzzer self-test): drop-falcon-cpu")
	)
	flag.Parse()

	shards, err := parseShards(*shardsF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	if *deadline > 0 {
		armDeadline(*deadline)
	}

	if *fuzzDefect != "" {
		if code := installDefect(*fuzzDefect); code != 0 {
			return code
		}
	}

	if *scenarioF != "" {
		return runScenario(*scenarioF, shards)
	}

	if *fuzz {
		var sel []string
		if *oracleSel != "" {
			sel = strings.Split(*oracleSel, ",")
		}
		extra := ""
		if *fuzzDefect != "" {
			extra = "-fuzz-defect " + *fuzzDefect
		}
		return runFuzz(scenario.FuzzOptions{
			Seeds: *seeds, StartSeed: *fuzzSeed, Oracles: sel,
			ReproDir: *reproDir, NoShrink: *noShrink,
			Workers: *fuzzWorkers, ExtraArgs: extra,
		})
	}

	if *replay != "" {
		return runReplay(*replay, *maxEvents)
	}

	if *report != "" {
		return benchReport(*report, *baseline, shards,
			experiments.Options{Kernel: *kernel, Seed: *seed})
	}

	if *scale {
		return runScale(experiments.Options{Kernel: *kernel, Seed: *seed})
	}

	var exps []experiments.Experiment
	if *all {
		exps = experiments.All()
	} else if *expIDs != "" {
		for _, id := range strings.Split(*expIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "falconsim: unknown experiment %q (use -list)\n", id)
				return 1
			}
			exps = append(exps, e)
		}
	} else {
		flag.Usage()
		return 2
	}

	opt := experiments.Options{
		Quick: *quick, Kernel: *kernel, Seed: *seed,
		Audit: *auditOn, MaxEvents: *maxEvents, Shards: shards,
		RxCache: *cacheOn,
	}
	if err := loadScheduleFlags(&opt, *reconfigF, *crashF); err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 1
	}
	failures := runExperiments(exps, opt, os.Stdout)
	if n := skb.PoolMisuses(); n > 0 {
		fmt.Fprintf(os.Stderr, "falconsim: WARNING: %d SKB pool misuses (double-free or stale-generation free) were dropped; run with -audit for attribution\n", n)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "falconsim: %d experiment(s) failed\n", failures)
		return 1
	}
	return 0
}

// loadScheduleFlags resolves the -reconfig and -crash JSON files into
// the run options. Any malformed input — unreadable file, broken JSON,
// or a schedule that fails validation — comes back as a single-line
// error; the caller prints it and exits nonzero. This path must never
// panic on user input.
func loadScheduleFlags(opt *experiments.Options, reconfigPath, crashPath string) error {
	if reconfigPath != "" {
		sched, err := reconfig.LoadFile(reconfigPath)
		if err != nil {
			return err
		}
		opt.Reconfig = sched
	}
	if crashPath != "" {
		cs, err := reconfig.LoadCrashFile(crashPath)
		if err != nil {
			return err
		}
		opt.Crash = cs
	}
	return nil
}

// writeMemProfile snapshots the heap at exit (after a GC, so the profile
// shows live objects rather than garbage awaiting collection).
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
	}
}

// armDeadline aborts the process (exit 3) if it outlives d — the guard
// against a hung simulation wedging CI forever. Profiles in flight are
// lost on this path; an abort is not a measurement.
func armDeadline(d time.Duration) {
	time.AfterFunc(d, func() {
		fmt.Fprintf(os.Stderr, "falconsim: DEADLINE EXCEEDED after %v; aborting\n", d)
		os.Exit(3)
	})
}

// runReplay re-runs the run recorded in an audit dump header, with
// auditing on, and reports whether the failure reproduces: exit 1 with
// the violation when it does (the expected outcome for a genuine dump),
// exit 0 when the run now passes.
func runReplay(path string, maxEvents uint64) int {
	info, err := audit.ParseDumpFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 2
	}
	if info.Scenario != "" {
		// Fuzz-scenario dump: the header embeds the scenario itself and
		// (as exp=fuzz/<oracle>) the oracle to re-check.
		return replayScenarioDump(info)
	}
	e, ok := experiments.ByID(info.Exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "falconsim: dump names unknown experiment %q\n", info.Exp)
		return 2
	}
	opt := experiments.Options{
		Quick: info.Quick, Kernel: info.Kernel, Seed: uint64(info.Seed),
		Audit: true, MaxEvents: maxEvents,
	}
	fmt.Fprintf(os.Stderr, "falconsim: replaying %s (seed %d, kernel %q, quick %t)\n",
		info.Exp, info.Seed, info.Kernel, info.Quick)
	code := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				code = 1
				if ab, isAudit := r.(*audit.Abort); isAudit {
					fmt.Fprintf(os.Stderr, "falconsim: REPRODUCED: %s\n", ab.V)
					audit.WriteDump(os.Stderr, info, ab.V, ab.A)
				} else {
					fmt.Fprintf(os.Stderr, "falconsim: REPRODUCED (panic): %v\n", r)
				}
			}
		}()
		e.Run(opt)
	}()
	if code == 0 {
		fmt.Fprintf(os.Stderr, "falconsim: replay completed clean — failure did not reproduce\n")
	}
	return code
}

// parseShards maps the -shards flag to an Options.Shards value: empty or
// a number pass through (0/1 = serial), "auto" becomes the sentinel each
// bed resolves against its own topology via sim.AutoShards.
func parseShards(s string) (int, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return experiments.ShardsAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf(`-shards: want a non-negative count or "auto", got %q`, s)
	}
	return n, nil
}

// runExperiments runs the experiments sequentially — simulation-level
// parallelism now lives inside each run (-shards), where it speeds up a
// single simulation instead of merely overlapping independent ones —
// and streams rendered tables to out in request order. A panic (audit
// abort, event-budget breach, or a genuine bug) is recovered and
// reported on stderr with the failing experiment/seed — audit aborts
// additionally write a replayable dump — and the failure count is
// returned instead of crashing the run.
func runExperiments(exps []experiments.Experiment, opt experiments.Options, out io.Writer) int {
	failures := 0
	for i, e := range exps {
		func() {
			defer func() {
				if r := recover(); r != nil {
					failures++
					reportRunPanic(e, opt, i, len(exps), r)
				}
			}()
			start := time.Now()
			tables := e.Run(opt)
			var b strings.Builder
			fmt.Fprintf(&b, "### %s — %s\n\n", e.ID, e.Title)
			for _, t := range tables {
				fmt.Fprintln(&b, t)
			}
			fmt.Fprintf(os.Stderr, "falconsim: %s  [%.1fs]\n", e.ID, time.Since(start).Seconds())
			fmt.Fprint(out, b.String())
		}()
	}
	return failures
}

// reportRunPanic renders one recovered experiment failure: the failing
// experiment and seed on stderr, plus a replayable dump file for audit
// aborts and a state dump for event-budget breaches.
func reportRunPanic(e experiments.Experiment, opt experiments.Options, idx, total int, r any) {
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	fmt.Fprintf(os.Stderr, "falconsim: PANIC in %s (seed %d, experiment %d/%d): %v\n",
		e.ID, seed, idx+1, total, r)
	info := audit.RunInfo{Exp: e.ID, Seed: int64(seed), Kernel: opt.Kernel, Quick: opt.Quick}
	switch v := r.(type) {
	case *audit.Abort:
		path := fmt.Sprintf("falcon-audit-%s.dump", e.ID)
		if err := audit.WriteDumpFile(path, info, v.V, v.A); err != nil {
			fmt.Fprintf(os.Stderr, "falconsim: writing dump: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "falconsim: audit dump written to %s (reproduce: falconsim -replay %s)\n", path, path)
	case *sim.BudgetExceeded:
		fmt.Fprintf(os.Stderr, "falconsim: event budget exhausted: %v (runaway simulation? raise -max-events)\n", v)
	}
}

// windowBench summarizes the cluster's synchronization behaviour over
// one sharded run: how many safe-horizon windows the coordinator cut,
// how wide they were in simulated time, how much cross-shard traffic
// each carried, and what fraction of worker slots sat idle (busy-shard
// deficit, not OS scheduling).
type windowBench struct {
	Windows          uint64  `json:"windows"`
	WindowsPerSec    float64 `json:"windows_per_sec"`
	AvgWidthSimNs    float64 `json:"avg_width_sim_ns"`
	CrossShardMsgs   uint64  `json:"cross_shard_msgs"`
	MsgsPerWindow    float64 `json:"msgs_per_window"`
	WorkerIdleFrac   float64 `json:"worker_idle_fraction"`
	AvgBusyShards    float64 `json:"avg_busy_shards"`
	GlobalEvents     uint64  `json:"global_events"`
	AdaptiveHorizons bool    `json:"adaptive_horizons"`
}

// shardedBench records the intra-simulation PDES comparison: one
// multi-host experiment run to completion on the serial engine and again
// on an N-shard cluster producing byte-identical output. NumCPU is the
// host's core count at measurement time — on fewer cores than shards the
// speedup honestly reflects synchronization overhead, not parallelism.
type shardedBench struct {
	Shards         int         `json:"shards"`
	Experiment     string      `json:"experiment"`
	NumCPU         int         `json:"num_cpu"`
	SerialSeconds  float64     `json:"serial_seconds"`
	ShardedSeconds float64     `json:"sharded_seconds"`
	Speedup        float64     `json:"speedup"`
	Windows        windowBench `json:"windows"`
}

// autoBench records the -shards auto resolution and its wall-clock
// against the same serial baseline: the counts sim.AutoShards picked for
// the benchmark topology on this machine. On a single-CPU host auto
// degrades to the serial engine and the speedup is exactly 1.0x by
// construction.
type autoBench struct {
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// latencySummary is one experiment's merged end-to-end latency
// percentiles (nanoseconds of simulated time, so the numbers are
// deterministic for a given seed — unlike the wall-clock fields, the
// guard can hold these to a tight band).
type latencySummary struct {
	Count  uint64 `json:"count"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
}

// latencyBench is the report's tail-latency section: each tracked
// experiment run with an attached histogram (quick windows keep the
// bench job fast), keyed by experiment id.
type latencyBench struct {
	Quick       bool                      `json:"quick"`
	Experiments map[string]latencySummary `json:"experiments"`
}

type benchReportFile struct {
	HotPath experiments.HotPathBench    `json:"hot_path"`
	Sharded shardedBench                `json:"sharded"`
	Auto    autoBench                   `json:"sharded_auto"`
	Latency latencyBench                `json:"latency"`
	Cache   experiments.CacheComparison `json:"cache"`
}

// latencyBenchExps are the experiments whose merged latency histograms
// the report tracks: the headline UDP stress, the multi-host ring, and
// the open-loop overload sweep.
var latencyBenchExps = []string{"fig10", "mesh8", "abl-tail"}

// benchLatency runs each tracked experiment with a tail-latency
// histogram attached and summarizes the merged samples.
func benchLatency(opt experiments.Options) latencyBench {
	lat := latencyBench{Quick: true, Experiments: map[string]latencySummary{}}
	for _, id := range latencyBenchExps {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "falconsim: bench: latency experiment %q missing\n", id)
			continue
		}
		fmt.Fprintf(os.Stderr, "falconsim: bench: %s latency (quick windows)...\n", id)
		hist := stats.NewHistogram()
		lopt := opt
		lopt.Quick = true
		lopt.TailLatency = hist
		e.Run(lopt)
		s := hist.Summarize()
		lat.Experiments[id] = latencySummary{
			Count: s.Count, P50Ns: s.P50, P99Ns: s.P99, P999Ns: s.P999,
		}
	}
	return lat
}

// shardBenchExp is the experiment the sharded-vs-serial benchmark times:
// the 8-host ring is the smallest topology where every shard both sends
// and receives cross-shard traffic.
const shardBenchExp = "mesh8"

// shardBenchHosts is shardBenchExp's host count, used to report what
// -shards auto resolves to on this machine.
const shardBenchHosts = 8

// fillWindowBench derives the report's window metrics from the raw
// cluster counters and the run's wall-clock.
func fillWindowBench(ws sim.ClusterStats, seconds float64, adaptive bool) windowBench {
	wb := windowBench{
		Windows:          ws.Windows,
		CrossShardMsgs:   ws.Msgs,
		GlobalEvents:     ws.Globals,
		AdaptiveHorizons: adaptive,
	}
	if ws.Windows > 0 {
		wb.AvgWidthSimNs = float64(ws.WidthSum) / float64(ws.Windows)
		wb.MsgsPerWindow = float64(ws.Msgs) / float64(ws.Windows)
		wb.AvgBusyShards = float64(ws.BusySum) / float64(ws.Windows)
	}
	if seconds > 0 {
		wb.WindowsPerSec = float64(ws.Windows) / seconds
	}
	if ws.Slots > 0 {
		wb.WorkerIdleFrac = 1 - float64(ws.UsedSlots)/float64(ws.Slots)
	}
	return wb
}

// benchReport produces BENCH_sim.json: full-window hot-path metrics and
// the intra-simulation PDES speedup (forced shard count plus the
// -shards auto resolution), optionally guarded against a committed
// baseline. Returns the process exit code.
func benchReport(path, baselinePath string, shards int, opt experiments.Options) int {
	if shards <= 1 {
		shards = 4
	}
	fmt.Fprintf(os.Stderr, "falconsim: bench: hot path (full windows)...\n")
	hot := experiments.BenchHotPath(opt)

	mesh, ok := experiments.ByID(shardBenchExp)
	if !ok {
		fmt.Fprintf(os.Stderr, "falconsim: bench: experiment %q missing\n", shardBenchExp)
		return 1
	}
	fmt.Fprintf(os.Stderr, "falconsim: bench: %s serial (full windows)...\n", shardBenchExp)
	meshSerial := timeExp(mesh, opt)

	sopt := opt
	sopt.Shards = shards
	var ws sim.ClusterStats
	sopt.WindowStats = &ws
	fmt.Fprintf(os.Stderr, "falconsim: bench: %s -shards %d (full windows)...\n", shardBenchExp, shards)
	meshSharded := timeExp(mesh, sopt)

	aopt := opt
	aopt.Shards = experiments.ShardsAuto
	autoShards, autoWorkers := sim.AutoShards(shardBenchHosts)
	fmt.Fprintf(os.Stderr, "falconsim: bench: %s -shards auto → %d shards, %d workers (full windows)...\n",
		shardBenchExp, autoShards, autoWorkers)
	meshAuto := timeExp(mesh, aopt)

	lat := benchLatency(opt)

	// Cache-vs-Falcon comparison on quick windows: the ratios and hit
	// rate are simulated-time quantities, deterministic for the seed.
	copt := opt
	copt.Quick = true
	fmt.Fprintf(os.Stderr, "falconsim: bench: rx-cache comparison (quick windows)...\n")
	cache := experiments.MeasureCache(copt)

	rep := benchReportFile{
		HotPath: hot,
		Sharded: shardedBench{
			Shards: shards, Experiment: shardBenchExp, NumCPU: runtime.NumCPU(),
			SerialSeconds: meshSerial, ShardedSeconds: meshSharded,
			Speedup: meshSerial / meshSharded,
			Windows: fillWindowBench(ws, meshSharded, true),
		},
		Auto: autoBench{
			Shards: autoShards, Workers: autoWorkers,
			Seconds: meshAuto, Speedup: meshSerial / meshAuto,
		},
		Latency: lat,
		Cache:   cache,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"falconsim: bench: %.0f events/s, %.0f ns/pkt, %.1f allocs/pkt, %s speedup %.2fx (%d shards, %d cpus; auto → %dx%d, %.2fx), %d windows (%.0f sim-ns avg, %.1f msgs/window, %.0f%% idle)\n",
		hot.EventsPerSec, hot.NsPerPacket, hot.AllocsPerPacket,
		shardBenchExp, rep.Sharded.Speedup, shards, rep.Sharded.NumCPU,
		autoShards, autoWorkers, rep.Auto.Speedup,
		ws.Windows, rep.Sharded.Windows.AvgWidthSimNs, rep.Sharded.Windows.MsgsPerWindow,
		rep.Sharded.Windows.WorkerIdleFrac*100)

	fmt.Fprintf(os.Stderr,
		"falconsim: bench: rx-cache %.2fx vs vanilla (falcon %.2fx, both ns/pkt %.0f), hit-rate %.1f%%, %.1f allocs/pkt\n",
		cache.CacheImprovement, cache.FalconImprovement, cache.CombinedNsPerPkt,
		cache.CacheHitRate*100, cache.CacheAllocsPerPacket)

	if baselinePath != "" {
		return guardBaseline(baselinePath, hot, rep.Sharded, rep.Latency, cache)
	}
	return 0
}

// runScale sweeps the PDES benchmark over shard configurations and
// prints one row per configuration: wall-clock, speedup vs the serial
// row, and the window synchronization metrics. Timing noise makes this
// output non-deterministic, so it prints to stdout as a tool report,
// not an experiment table.
func runScale(opt experiments.Options) int {
	mesh, ok := experiments.ByID(shardBenchExp)
	if !ok {
		fmt.Fprintf(os.Stderr, "falconsim: scale: experiment %q missing\n", shardBenchExp)
		return 1
	}
	autoShards, autoWorkers := sim.AutoShards(shardBenchHosts)
	fmt.Printf("PDES scaling sweep: %s, %d hosts, %d cpus (auto → %d shards, %d workers)\n",
		shardBenchExp, shardBenchHosts, runtime.NumCPU(), autoShards, autoWorkers)
	fmt.Printf("%-8s %10s %8s %9s %14s %12s %9s\n",
		"shards", "seconds", "speedup", "windows", "width(sim-ns)", "msgs/window", "idle")
	var serial float64
	for _, cfg := range []int{1, 2, 4, experiments.ShardsAuto} {
		label := fmt.Sprintf("%d", cfg)
		if cfg == experiments.ShardsAuto {
			label = "auto"
		}
		sopt := opt
		sopt.Shards = cfg
		var ws sim.ClusterStats
		sopt.WindowStats = &ws
		secs := timeExp(mesh, sopt)
		if cfg == 1 {
			serial = secs
		}
		speedup := 0.0
		if secs > 0 {
			speedup = serial / secs
		}
		wb := fillWindowBench(ws, secs, true)
		if ws.Windows == 0 {
			fmt.Printf("%-8s %10.3f %7.2fx %9s %14s %12s %9s\n",
				label, secs, speedup, "-", "-", "-", "-")
			continue
		}
		fmt.Printf("%-8s %10.3f %7.2fx %9d %14.0f %12.1f %8.1f%%\n",
			label, secs, speedup, wb.Windows, wb.AvgWidthSimNs,
			wb.MsgsPerWindow, wb.WorkerIdleFrac*100)
	}
	return 0
}

// timeExp runs one experiment, discarding its tables, and returns
// wall-clock seconds.
func timeExp(e experiments.Experiment, opt experiments.Options) float64 {
	start := time.Now()
	e.Run(opt)
	return time.Since(start).Seconds()
}

// guardBaseline fails (exit 1) on performance regression against the
// committed baseline report: allocs/packet beyond +10%, ns/packet beyond
// +35% (wall-clock, so the bound is loose against machine noise), p99
// latency beyond +25% on any tracked experiment (simulated time, so the
// bound is pure datapath behaviour, no machine noise), or — on hardware
// with enough cores for the shards to actually run in parallel —
// sharded speedup below 1.15x. When the baseline carries a cache
// section, the RX flow cache's floors are also enforced: ≥1.30x
// softirq-ns/pkt improvement over vanilla at a ≥90% warm hit rate, and
// cache-run allocs/pkt within +10% of baseline.
func guardBaseline(path string, hot experiments.HotPathBench, sharded shardedBench, lat latencyBench, cache experiments.CacheComparison) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: baseline: %v\n", err)
		return 1
	}
	var base benchReportFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "falconsim: baseline: %v\n", err)
		return 1
	}
	code := 0
	limit := base.HotPath.AllocsPerPacket * 1.10
	if hot.AllocsPerPacket > limit {
		fmt.Fprintf(os.Stderr,
			"falconsim: ALLOC REGRESSION: %.2f allocs/pkt > %.2f (baseline %.2f +10%%)\n",
			hot.AllocsPerPacket, limit, base.HotPath.AllocsPerPacket)
		code = 1
	} else {
		fmt.Fprintf(os.Stderr, "falconsim: allocs/pkt %.2f within baseline %.2f +10%%\n",
			hot.AllocsPerPacket, base.HotPath.AllocsPerPacket)
	}
	if base.HotPath.NsPerPacket > 0 {
		nsLimit := base.HotPath.NsPerPacket * 1.35
		if hot.NsPerPacket > nsLimit {
			fmt.Fprintf(os.Stderr,
				"falconsim: SPEED REGRESSION: %.0f ns/pkt > %.0f (baseline %.0f +35%%)\n",
				hot.NsPerPacket, nsLimit, base.HotPath.NsPerPacket)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: ns/pkt %.0f within baseline %.0f +35%%\n",
				hot.NsPerPacket, base.HotPath.NsPerPacket)
		}
	}
	ids := make([]string, 0, len(base.Latency.Experiments))
	for id := range base.Latency.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b := base.Latency.Experiments[id]
		if b.Count == 0 {
			continue // baseline predates latency tracking for this id
		}
		cur, ok := lat.Experiments[id]
		if !ok || cur.Count == 0 {
			fmt.Fprintf(os.Stderr,
				"falconsim: LATENCY REGRESSION: %s produced no latency samples (baseline had %d)\n",
				id, b.Count)
			code = 1
			continue
		}
		p99Limit := int64(float64(b.P99Ns) * 1.25)
		if cur.P99Ns > p99Limit {
			fmt.Fprintf(os.Stderr,
				"falconsim: LATENCY REGRESSION: %s p99 %dns > %dns (baseline %dns +25%%)\n",
				id, cur.P99Ns, p99Limit, b.P99Ns)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: %s p99 %dns within baseline %dns +25%%\n",
				id, cur.P99Ns, b.P99Ns)
		}
	}
	if base.Cache.VanillaNsPerPkt > 0 { // baseline predates the cache section otherwise
		const improveFloor, hitFloor = 1.30, 0.90
		if cache.CacheImprovement < improveFloor {
			fmt.Fprintf(os.Stderr,
				"falconsim: CACHE REGRESSION: %.2fx improvement over vanilla < %.2fx floor\n",
				cache.CacheImprovement, improveFloor)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: rx-cache improvement %.2fx >= %.2fx floor\n",
				cache.CacheImprovement, improveFloor)
		}
		if cache.CacheHitRate < hitFloor {
			fmt.Fprintf(os.Stderr,
				"falconsim: CACHE REGRESSION: hit rate %.1f%% < %.0f%% floor\n",
				cache.CacheHitRate*100, hitFloor*100)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: rx-cache hit rate %.1f%% >= %.0f%% floor\n",
				cache.CacheHitRate*100, hitFloor*100)
		}
		allocLimit := base.Cache.CacheAllocsPerPacket * 1.10
		if cache.CacheAllocsPerPacket > allocLimit {
			fmt.Fprintf(os.Stderr,
				"falconsim: CACHE ALLOC REGRESSION: %.2f allocs/pkt > %.2f (baseline %.2f +10%%)\n",
				cache.CacheAllocsPerPacket, allocLimit, base.Cache.CacheAllocsPerPacket)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: rx-cache allocs/pkt %.2f within baseline %.2f +10%%\n",
				cache.CacheAllocsPerPacket, base.Cache.CacheAllocsPerPacket)
		}
	}
	// The speedup floor only means something when the shards can really
	// run concurrently; on smaller machines the sharded run measures
	// synchronization overhead and the floor would always fail.
	const speedupFloor = 1.15
	if runtime.NumCPU() >= 4 {
		if sharded.Speedup < speedupFloor {
			fmt.Fprintf(os.Stderr,
				"falconsim: SHARD SPEEDUP REGRESSION: %.2fx < %.2fx floor (%d shards on %d cpus)\n",
				sharded.Speedup, speedupFloor, sharded.Shards, runtime.NumCPU())
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "falconsim: sharded speedup %.2fx >= %.2fx floor\n",
				sharded.Speedup, speedupFloor)
		}
	} else {
		fmt.Fprintf(os.Stderr,
			"falconsim: sharded speedup %.2fx recorded, floor skipped (%d cpus < 4)\n",
			sharded.Speedup, runtime.NumCPU())
	}
	return code
}
