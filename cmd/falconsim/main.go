// Command falconsim regenerates the paper's tables and figures.
//
// Usage:
//
//	falconsim -list                 # list available experiments
//	falconsim -exp fig10            # run one experiment
//	falconsim -exp fig10,fig13      # run several
//	falconsim -all                  # run everything
//	falconsim -all -quick           # shorter measurement windows
//	falconsim -exp fig10 -kernel 5.4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"falcon/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments and exit")
		expIDs = flag.String("exp", "", "comma-separated experiment ids to run")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "short measurement windows")
		kernel = flag.String("kernel", "", `kernel cost profile ("4.19" default, "5.4")`)
		seed   = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *all {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else if *expIDs != "" {
		ids = strings.Split(*expIDs, ",")
	} else {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Options{Quick: *quick, Kernel: *kernel, Seed: *seed}
	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "falconsim: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tables := e.Run(opt)
		fmt.Printf("### %s — %s  [%.1fs]\n\n", e.ID, e.Title, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t)
		}
	}
}
