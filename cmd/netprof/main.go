// Command netprof runs a workload on the simulated overlay and prints a
// flamegraph-style per-function CPU profile of the server — the tool
// behind the paper's Figures 6 and 9(a).
//
// Usage examples:
//
//	netprof -workload sockperf -size 1024
//	netprof -workload memcached
//	netprof -workload tcpbulk -size 4096 -percore
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"falcon/internal/apps"
	falconcore "falcon/internal/core"
	"falcon/internal/costmodel"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "sockperf", "sockperf | memcached | tcpbulk")
		size     = flag.Int("size", 1024, "message size (sockperf/tcpbulk)")
		falconOn = flag.Bool("falcon", false, "enable Falcon on the server")
		kernel   = flag.String("kernel", "", `kernel profile ("4.19" default, "5.4")`)
		duration = flag.Duration("duration", 60*time.Millisecond, "virtual run time")
		perCore  = flag.Bool("percore", false, "also print per-core function time")
		topN     = flag.Int("top", 15, "number of functions to print")
	)
	flag.Parse()

	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: *kernel, LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true,
	})
	if *falconOn {
		tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{3, 4, 5}))
	}

	until := sim.Time(duration.Nanoseconds())
	warm := until / 4
	switch *wl {
	case "sockperf":
		tb.StressFlood(true, 3, *size, 2, until)
	case "memcached":
		apps.StartMemcached(apps.MemcachedConfig{
			ServerHost: tb.Server, ServerCtr: tb.ServerCtrs[0],
			ServerCores: []int{6, 7, 8, 9}, Port: 11211,
			ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
			ClientThreads: 4, ClientCoreBase: 2, Connections: 100,
			ThinkTime: 300 * sim.Microsecond,
		}, until)
	case "tcpbulk":
		c, err := transport.Dial(transport.Config{
			Net:        tb.Net,
			SenderHost: tb.Client, SenderCtr: tb.ClientCtrs[0], SenderCore: 2, SrcPort: 40000,
			ReceiverHost: tb.Server, ReceiverCtr: tb.ServerCtrs[0], AppCore: 2, DstPort: 5201,
			MsgSize: *size, FlowID: 1,
		}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netprof: %v\n", err)
			os.Exit(1)
		}
		c.StartContinuous()
	default:
		fmt.Fprintf(os.Stderr, "netprof: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	tb.Run(warm)
	tb.Server.ResetMeasurement()
	tb.Run(until)

	prof := tb.Server.M.Prof
	fmt.Println(prof.Table(fmt.Sprintf("server CPU profile: %s (falcon=%v)", *wl, *falconOn), *topN))

	if *perCore {
		fmt.Println("per-core function time (ms):")
		for c := 0; c < tb.Server.M.NumCores(); c++ {
			if tb.Server.M.Acct.TotalBusy(c) == 0 {
				continue
			}
			fmt.Printf("  core%d:\n", c)
			for fn := costmodel.Func(0); fn < costmodel.NumFuncs; fn++ {
				if t := prof.CoreTime(c, fn); t > 0 {
					fmt.Printf("    %-20s %8.3f\n", fn, float64(t)/1e6)
				}
			}
		}
	}
}
