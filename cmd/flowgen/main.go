// Command flowgen drives standalone traffic through the simulated
// testbed and reports delivery, latency and per-core utilization — a
// sockperf-style measurement tool for exploring configurations outside
// the canned experiments.
//
// Usage examples:
//
//	flowgen -mode con -size 16 -flows 1 -stress
//	flowgen -mode falcon -size 4096 -flows 4 -rate 200000
//	flowgen -mode host -proto tcp -size 4096 -duration 80ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "con", "host | con | falcon")
		protoF   = flag.String("proto", "udp", "udp | tcp")
		size     = flag.Int("size", 1024, "message size in bytes")
		flows    = flag.Int("flows", 1, "concurrent flows")
		rate     = flag.Float64("rate", 0, "per-flow packet rate (UDP; 0 with -stress floods)")
		stress   = flag.Bool("stress", false, "flood at maximum sender rate (UDP)")
		linkGbps = flag.Float64("link", 100, "link rate in Gb/s")
		kernel   = flag.String("kernel", "", `kernel profile ("4.19" default, "5.4")`)
		duration = flag.Duration("duration", 60*time.Millisecond, "virtual run time")
		warmup   = flag.Duration("warmup", 15*time.Millisecond, "virtual warmup excluded from measurement")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: *kernel, LinkRate: *linkGbps * devices.Gbps, Cores: 16, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1, 2, 3, 4},
		GRO: true, InnerGRO: true, Seed: *seed,
	})
	var m workload.Mode
	switch *mode {
	case "host":
		m = workload.ModeHost
	case "con":
		m = workload.ModeCon
	case "falcon":
		m = workload.ModeFalcon
		tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{10, 11, 12, 13}))
	default:
		fmt.Fprintf(os.Stderr, "flowgen: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	wu := sim.Time(warmup.Nanoseconds())
	until := sim.Time(duration.Nanoseconds())
	if until <= wu {
		fmt.Fprintln(os.Stderr, "flowgen: duration must exceed warmup")
		os.Exit(2)
	}
	window := until - wu

	var socks []*socket.Socket
	var conns []*transport.Conn
	switch *protoF {
	case "udp":
		for i := 0; i < *flows; i++ {
			var f *workload.UDPFlow
			if m == workload.ModeHost {
				f = tb.NewUDPFlow(nil, workload.ServerIP, uint16(7000+i), uint16(5001+i),
					*size, 2+i%4, 5+i%5, uint64(i+1))
			} else {
				f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, uint16(7000+i), uint16(5001+i),
					*size, 2+i%4, 5+i%5, uint64(i+1))
			}
			if *stress || *rate <= 0 {
				f.Flood(until)
			} else {
				f.SendAtRate(*rate, until)
			}
			socks = append(socks, f.Sock)
		}
	case "tcp":
		for i := 0; i < *flows; i++ {
			cfg := transport.Config{
				Net:        tb.Net,
				SenderHost: tb.Client, SenderCore: 2 + i%4, SrcPort: uint16(40000 + i),
				ReceiverHost: tb.Server, AppCore: 5 + i%5, DstPort: uint16(5200 + i),
				MsgSize: *size, FlowID: uint64(i + 1),
			}
			if m != workload.ModeHost {
				cfg.SenderCtr = tb.ClientCtrs[0]
				cfg.ReceiverCtr = tb.ServerCtrs[0]
			}
			c, err := transport.Dial(cfg, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flowgen: %v\n", err)
				os.Exit(1)
			}
			c.StartContinuous()
			conns = append(conns, c)
			socks = append(socks, c.Socket())
		}
	default:
		fmt.Fprintf(os.Stderr, "flowgen: unknown proto %q\n", *protoF)
		os.Exit(2)
	}

	var tcpBase uint64
	tb.Run(wu)
	for _, c := range conns {
		tcpBase += c.BytesAssembled.Value()
	}
	res := workload.MeasureWindow(tb, socks, wu, window)

	fmt.Printf("mode=%s proto=%s size=%dB flows=%d link=%.0fG window=%v\n",
		*mode, *protoF, *size, *flows, *linkGbps, window)
	fmt.Printf("delivered: %d pkts, %.1f Kpps, %.2f Gbps goodput\n",
		res.Delivered, res.PPS/1e3, res.GbpsFor(*size))
	if len(conns) > 0 {
		var bytes uint64
		for _, c := range conns {
			bytes += c.BytesAssembled.Value()
		}
		fmt.Printf("tcp stream: %.2f Gbps assembled\n",
			float64(bytes-tcpBase)*8/window.Seconds()/1e9)
	}
	fmt.Printf("latency: %v\n", res.Latency)
	fmt.Printf("drops: nic=%d backlog=%d socket=%d\n",
		res.NICDrops, res.BacklogDrops, res.SocketDrops)
	fmt.Printf("irqs/s: hw=%.0f net_rx=%.0f res=%.0f\n",
		float64(res.HardIRQs)/window.Seconds(),
		float64(res.NetRX)/window.Seconds(),
		float64(res.RES)/window.Seconds())
	fmt.Println("server cores (busy | softirq | task):")
	for c := 0; c < len(res.CoreBusy); c++ {
		if res.CoreBusy[c] < 0.01 {
			continue
		}
		fmt.Printf("  core%-2d %s %5.1f%% | %5.1f%% | %5.1f%%\n", c,
			stats.Bar(res.CoreBusy[c], 30),
			res.CoreBusy[c]*100, res.CoreSoftirq[c]*100, res.CoreTask[c]*100)
	}
}
