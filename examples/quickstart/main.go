// Quickstart: build the paper's two-server testbed, run the same 16-byte
// single-flow UDP stress in all three configurations (native host
// network, vanilla Docker-style overlay, Falcon overlay), and print the
// headline comparison — the essence of the paper's Figure 10.
package main

import (
	"fmt"

	falcon "falcon"
)

func run(mode falcon.Mode) falcon.Result {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, // the 100G Mellanox link
		Cores:    12,
		// The paper's Fig. 11 layout: NIC queue on core 0, RPS steers
		// softirqs to core 1, the application thread runs on core 2.
		RSSCores: []int{0},
		RPSCores: []int{1},
		GRO:      true, InnerGRO: true,
		Containers: 1,
	})
	if mode == falcon.ModeFalcon {
		// FALCON_CPUS: the extra cores softirq stages pipeline across.
		tb.EnableFalconOnServer(falcon.DefaultConfig([]int{3, 4, 5}))
	}

	// Three sockperf clients flood one UDP server port (the paper's
	// single-flow stress: one flow, pressed to the stack's limit).
	sock, _ := tb.StressFlood(mode != falcon.ModeHost, 3, 16, 2, 70*falcon.Millisecond)

	// Skip 15ms of warmup, measure 50ms.
	return falcon.MeasureWindow(tb, []*falcon.Socket{sock}, 15*falcon.Millisecond, 50*falcon.Millisecond)
}

func main() {
	fmt.Println("single-flow UDP stress, 16B packets, 100G link")
	fmt.Println()
	host := run(falcon.ModeHost)
	results := map[falcon.Mode]falcon.Result{
		falcon.ModeHost:   host,
		falcon.ModeCon:    run(falcon.ModeCon),
		falcon.ModeFalcon: run(falcon.ModeFalcon),
	}
	for _, mode := range []falcon.Mode{falcon.ModeHost, falcon.ModeCon, falcon.ModeFalcon} {
		r := results[mode]
		fmt.Printf("%-7s %8.1f Kpps  (%.0f%% of host)   p99 latency %6.1f us\n",
			mode, r.PPS/1e3, r.PPS/host.PPS*100, float64(r.Latency.P99)/1e3)
	}
	fmt.Println()
	fmt.Println("the vanilla overlay (Con) serializes three softirqs per packet on")
	fmt.Println("one core; Falcon pipelines them across FALCON_CPUS and recovers")
	fmt.Println("most of the loss (paper: up to 87% of host throughput).")
}
