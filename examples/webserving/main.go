// Web serving: the paper's Section 6.2 CloudSuite experiment. A
// three-tier social-network stack — web workers, memcached, mysql, each
// in its own container on the server host — serves an Elgg-style
// operation mix to a closed-loop user population over the overlay.
// Falcon's balanced softirq placement keeps page delivery off hot cores,
// raising per-operation success rates and cutting response and delay
// times (paper: up to +300% rate, -63% response, -53% delay).
package main

import (
	"fmt"

	falcon "falcon"
	"falcon/internal/apps"
)

func run(falconOn bool) *apps.Web {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 12, Containers: 4,
		RSSCores: []int{0}, RPSCores: []int{0},
		GRO: true, InnerGRO: true,
	})
	if falconOn {
		tb.EnableFalconOnServer(falcon.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
		tb.Client.EnableFalcon(falcon.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
	}
	const until = 140 * falcon.Millisecond
	w := apps.StartWeb(apps.WebConfig{
		ServerHost: tb.Server,
		WebCtr:     tb.ServerCtrs[0], CacheCtr: tb.ServerCtrs[1], DBCtr: tb.ServerCtrs[2],
		WebCores: []int{8, 9}, CacheCore: 10, DBCore: 11,
		WorkScale:  0.05,
		ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
		Users: 250, ClientCores: []int{6, 7, 8, 9},
		ThinkTime: 500 * falcon.Microsecond,
	}, until)
	tb.Run(40 * falcon.Millisecond)
	w.ResetMeasurement()
	tb.Run(until)
	return w
}

func main() {
	fmt.Println("CloudSuite-style web serving: 250 users against a 3-tier Elgg stack")
	fmt.Println()
	con := run(false)
	fal := run(true)
	window := (100 * falcon.Millisecond).Seconds()

	fmt.Printf("%-16s %12s %12s %9s %14s %14s\n",
		"operation", "Con ops/s", "Falcon ops/s", "gain", "Con resp(us)", "Falcon resp(us)")
	for i := range con.Stats {
		c, f := con.Stats[i], fal.Stats[i]
		if c.Completed.Value() == 0 {
			continue
		}
		cr := float64(c.Completed.Value()) / window
		fr := float64(f.Completed.Value()) / window
		fmt.Printf("%-16s %12.0f %12.0f %8.0f%% %14.0f %14.0f\n",
			c.Op.Name, cr, fr, (fr/cr-1)*100, c.Resp.Mean()/1e3, f.Resp.Mean()/1e3)
	}
	fmt.Println()
	fmt.Println("pages fragment into MTU-sized packets; under the vanilla overlay")
	fmt.Println("their softirqs serialize on one core and users queue behind it.")
}
