// Livestream: the paper's Section 6.4 "real-world scenario" — an
// elephant UDP flow, as live HD video streaming or conferencing
// produces. A single high-bitrate UDP flow cannot be spread by RSS/RPS
// (one flow = one core), so the vanilla overlay saturates one core and
// drops frames; Falcon pipelines the flow's softirq stages and carries
// the stream.
package main

import (
	"fmt"

	falcon "falcon"
)

// A 4K60 live stream: ~25 Mb/s of 1200-byte datagrams... per viewer.
// A relay fanning out to 300 viewers pushes ~780 Kpps through one flow.
const (
	frameSize = 1200
	rate      = 780_000 // packets/s offered
)

func run(mode falcon.Mode) falcon.Result {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true,
	})
	if mode == falcon.ModeFalcon {
		tb.EnableFalconOnServer(falcon.DefaultConfig([]int{3, 4, 5}))
	}
	// The relay is itself parallel: two sender threads push the same
	// 5-tuple (one flow on the wire), so the sender does not bottleneck
	// before the receiver.
	var f *falcon.UDPFlow
	if mode == falcon.ModeHost {
		f = tb.NewUDPFlow(nil, falcon.ServerIP, 7000, 5004, frameSize, 2, 2, 1)
	} else {
		f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5004, frameSize, 2, 2, 1)
	}
	f.SendAtRate(rate/2, 75*falcon.Millisecond)
	f.Clone(3, 2).SendAtRate(rate/2, 75*falcon.Millisecond)
	return falcon.MeasureWindow(tb, []*falcon.Socket{f.Sock}, 15*falcon.Millisecond, 50*falcon.Millisecond)
}

func main() {
	fmt.Println("elephant UDP flow (live-video relay): one flow, 780 Kpps offered")
	fmt.Println()
	for _, mode := range []falcon.Mode{falcon.ModeHost, falcon.ModeCon, falcon.ModeFalcon} {
		r := run(mode)
		loss := 1 - r.PPS/rate
		if loss < 0 {
			loss = 0
		}
		fmt.Printf("%-7s delivered %7.1f Kpps  frame loss %5.1f%%  p99 %8.1f us\n",
			mode, r.PPS/1e3, loss*100, float64(r.Latency.P99)/1e3)
	}
	fmt.Println()
	fmt.Println("packet steering cannot split a single flow; only Falcon's stage")
	fmt.Println("pipelining lets the overlay keep up with an elephant UDP stream.")
}
