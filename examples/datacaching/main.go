// Data caching: the paper's Section 6.2 memcached experiment. A
// memcached server (4 worker threads, 550-byte objects) runs in a
// container; 100 client connections replay a GET-heavy mix through the
// overlay. With 10 client threads hammering the server, the vanilla
// overlay's serialized softirq core becomes the bottleneck and tail
// latency balloons; Falcon pipelines the receive stages and restores it
// (paper: -51% average, -53% p99).
package main

import (
	"fmt"

	falcon "falcon"
	"falcon/internal/apps"
)

func run(falconOn bool, clientThreads int) (avgUs, p99Us float64, opsPerSec float64) {
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{0},
		GRO: true, InnerGRO: true,
	})
	if falconOn {
		tb.EnableFalconOnServer(falcon.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
		tb.Client.EnableFalcon(falcon.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
	}

	const until = 110 * falcon.Millisecond
	m := apps.StartMemcached(apps.MemcachedConfig{
		ServerHost: tb.Server, ServerCtr: tb.ServerCtrs[0],
		ServerCores: []int{8, 9, 10, 11}, // the 4 memcached threads
		Port:        11211,
		ClientHost:  tb.Client, ClientCtr: tb.ClientCtrs[0],
		ClientThreads: 6, ClientCoreBase: 6, Connections: 100,
		ThinkTime: 1500 * falcon.Microsecond / falcon.Time(clientThreads),
	}, until)

	tb.Run(30 * falcon.Millisecond)
	m.ResetMeasurement()
	tb.Run(until)

	lat := m.Latency()
	return lat.Mean / 1e3, float64(lat.P99) / 1e3,
		float64(m.Completed()) / (80 * falcon.Millisecond).Seconds()
}

func main() {
	fmt.Println("CloudSuite-style data caching (memcached), 100 connections")
	fmt.Println()
	fmt.Printf("%-8s %-8s %10s %10s %12s\n", "clients", "mode", "avg(us)", "p99(us)", "ops/s")
	for _, threads := range []int{1, 10} {
		for _, falconOn := range []bool{false, true} {
			avg, p99, ops := run(falconOn, threads)
			mode := "Con"
			if falconOn {
				mode = "Falcon"
			}
			fmt.Printf("%-8d %-8s %10.1f %10.1f %12.0f\n", threads, mode, avg, p99, ops)
		}
	}
	fmt.Println()
	fmt.Println("with one client thread the network is underloaded and Falcon is")
	fmt.Println("neutral; at ten threads the overlay's serialized softirqs dominate")
	fmt.Println("and Falcon's pipelining collapses both average and tail latency.")
}
